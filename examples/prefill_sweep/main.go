// Prefill sweep: the paper's prefill-stage scenario (Figure 7) for one
// model. It sweeps prompt lengths and cache ratios, comparing TTFT for
// the four frameworks, and prints a Gantt timeline of one HybriMoE
// prefill so the CPU/GPU/PCIe overlap is visible.
//
// Run with: go run ./examples/prefill_sweep [-model Qwen2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hybrimoe/internal/core"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
)

func main() {
	model := flag.String("model", "DeepSeek", "model to sweep (DeepSeek, Mixtral, Qwen2)")
	flag.Parse()

	cfg, err := moe.ByName(*model)
	if err != nil {
		log.Fatal(err)
	}
	platform := hw.A6000Platform()

	tbl := report.NewTable(
		fmt.Sprintf("%s prefill TTFT across lengths and cache ratios", cfg.Name),
		"cache", "len", "llama.cpp(s)", "AdapMoE(s)", "KTrans(s)", "HybriMoE(s)", "speedup")
	for _, ratio := range []float64{0.25, 0.50, 0.75} {
		for _, length := range []int{32, 128, 512, 1024} {
			lats, err := core.CompareFrameworks(cfg, platform, ratio, 11, false, length)
			if err != nil {
				log.Fatal(err)
			}
			tbl.AddRow(fmt.Sprintf("%.0f%%", ratio*100), length,
				lats["llama.cpp"], lats["AdapMoE"], lats["KTransformers"], lats["HybriMoE"],
				lats["KTransformers"]/lats["HybriMoE"])
		}
	}
	tbl.Render(os.Stdout)

	// One traced prefill to visualise the hybrid overlap.
	sys, err := core.NewSystem(core.Config{
		Model:       cfg,
		Platform:    platform,
		CacheRatio:  0.25,
		Seed:        11,
		RecordTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Prefill(128)
	fmt.Printf("\nHybriMoE prefill-128 at 25%% cache: TTFT %.3fs\n", res.Total)
	fmt.Println("timeline:")
	fmt.Print(sys.Gantt(100))
}
