// Quickstart: build a HybriMoE engine for DeepSeek-V2-Lite on the
// A6000-class platform with the functional-options API, decode 32
// tokens, and print the paper's decode metric (TBT) together with cache
// statistics and the execution timeline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

func main() {
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), // 25% of routed experts fit in GPU memory
		engine.WithSeed(42),
		engine.WithTraceRecording(),
	)
	if err != nil {
		log.Fatal(err)
	}

	const steps = 32
	res := e.RunDecode(steps)

	fmt.Printf("model           : %s\n", res.Model)
	fmt.Printf("framework       : %s\n", res.Framework)
	fmt.Printf("decode steps    : %d\n", steps)
	fmt.Printf("mean TBT        : %.4f s\n", res.Mean())
	fmt.Printf("throughput      : %.1f tok/s\n", 1/res.Mean())
	fmt.Printf("cache hit rate  : %.1f%%\n", 100*res.Stats.CacheHitRate)
	fmt.Printf("expert ops      : %d on CPU, %d on GPU\n", res.Stats.CPUOps, res.Stats.GPUOps)
	fmt.Printf("transfers       : %d on-demand, %d prefetched\n",
		res.Stats.DemandTransfers, res.Stats.PrefetchTransfers)

	fmt.Println("\nexecution timeline (G=attention, L=experts, p=prefetch):")
	fmt.Print(e.Gantt(100))
}
