// Multi-GPU example: sharded expert serving across 1, 2 and 4 A6000s.
//
// The hardware model generalises the paper's {CPU, GPU, PCIe} triple to
// N GPUs, each with its own host link and its own expert-cache shard.
// Single-GPU schedulers (the paper's HybriMoE among them) are confined
// to GPU0 — they cannot express a plan that uses a second device — so
// scaling the topology does nothing for them. The registered
// expert-parallel scheduler places experts across GPUs by load ×
// residency: cached experts run on the device holding their weights,
// uncached ones ride whichever host link gets them compute-ready
// earliest. This example serves the same request stream through both
// schedulers on growing topologies and prints decode throughput and
// per-device utilisation side by side.
//
// Run with: go run ./examples/multigpu
package main

import (
	"fmt"
	"log"
	"strings"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

type runResult struct {
	decodeTokens int
	clockEnd     float64
	gpuBusy      []float64
	hitRate      float64
}

func serveOn(gpus int, schedName string, reqs []workload.Request) runResult {
	fw := engine.HybriMoEFramework()
	fw.Sched = schedName
	e, err := engine.New(moe.DeepSeek(), hw.MultiA6000Platform(gpus), fw,
		engine.WithCacheRatio(0.25), engine.WithSeed(2025))
	if err != nil {
		log.Fatal(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(3))
	s.Submit(reqs...)
	r := runResult{gpuBusy: make([]float64, gpus)}
	s.Run(func(ev engine.StepEvent) {
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		for d, busy := range ev.GPUBusyByDevice {
			r.gpuBusy[d] += busy
		}
		if ev.Phase == engine.PhaseDecode {
			r.decodeTokens += ev.Tokens
		}
	})
	r.hitRate = e.Caches().HitRate()
	return r
}

func main() {
	stream := workload.NewStream(2025, workload.AllDatasets()...)
	reqs := stream.NextN(8)
	workload.CapDecode(reqs, 12)

	fmt.Println("sharded expert serving: DeepSeek, 25% cache per GPU, 8 requests")
	fmt.Printf("%-5s %-16s %-13s %-9s %s\n", "gpus", "scheduler", "decode-tok/s", "hit-rate", "per-GPU-util")
	for _, gpus := range []int{1, 2, 4} {
		for _, schedName := range []string{"hybrimoe", "expert-parallel"} {
			r := serveOn(gpus, schedName, reqs)
			util := make([]string, gpus)
			for d, busy := range r.gpuBusy {
				util[d] = fmt.Sprintf("%.0f%%", 100*busy/r.clockEnd)
			}
			fmt.Printf("%-5d %-16s %-13.1f %-9.3f %s\n",
				gpus, schedName, float64(r.decodeTokens)/r.clockEnd, r.hitRate,
				strings.Join(util, "/"))
		}
	}
	fmt.Println("\nhybrimoe is a single-GPU planner: extra devices sit idle.")
	fmt.Println("expert-parallel spreads residency and compute, so throughput")
	fmt.Println("scales with the topology while TBT falls.")
}
