// Fleet example: multi-replica serving through internal/cluster. A
// burst of mixed-corpus requests with Poisson arrivals is dispatched
// across independent replica stacks — each its own engine, expert cache
// and session, advanced in lockstep on per-replica clocks — under each
// registered router in turn: content-blind round-robin, queue-aware
// least-loaded, randomized power-of-two, and cache-affinity steering,
// which sends each request to the lightest replica that will be ready
// for it soonest, discounting availability by predicted-expert
// residency. A fleet-level SLO guard sheds against fleet-aggregate
// quantiles before any replica queues the request. A churn pass then
// stalls one replica mid-run (its queued requests re-route once the
// lease expires) while a cold scale-up replica joins and re-warms. The
// closing table is the fleet study: routers × arrival rate at equal
// hardware, where affinity meets or beats round-robin on goodput at
// fleet scale.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"os"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

func main() {
	const (
		seed     = 42
		replicas = 3
		rate     = 24.0 // req/s, hot enough that routing quality shows
	)
	reqs := workload.NewStream(seed, workload.AllDatasets()...).
		WithArrivals(workload.Poisson(rate)).
		NextN(12)
	workload.CapDecode(reqs, 6)

	// Every registered router over the identical burst and hardware:
	// only the dispatch decision differs between rows.
	fmt.Printf("%d requests, %d replicas, Poisson %.0f req/s:\n\n", len(reqs), replicas, rate)
	fmt.Printf("  %-14s %-10s %-12s %-12s %s\n", "router", "makespan", "p95 TTFT", "mean TBT", "routed")
	for _, name := range cluster.RouterNames() {
		c, err := exp.NewFleet(replicas, name, seed, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		c.Submit(reqs...)
		var ttfts, tbts []float64
		makespan := 0.0
		c.Run(func(ev cluster.Event) {
			if ev.Kind != cluster.EventStep {
				return
			}
			if ev.End > makespan {
				makespan = ev.End
			}
			switch ev.Phase {
			case engine.PhasePrefill:
				ttfts = append(ttfts, ev.Queued+ev.Latency)
			case engine.PhaseDecode:
				tbts = append(tbts, ev.Latency)
			}
		})
		fmt.Printf("  %-14s %-10s %-12s %-12s %v\n", name,
			fmt.Sprintf("%.3fs", makespan),
			fmt.Sprintf("%.4fs", report.Latencies(ttfts).P95),
			fmt.Sprintf("%.5fs", report.Latencies(tbts).Mean),
			c.Routed())
	}

	// One streaming run in detail: affinity routing with a fleet-level
	// SLO guard at the door. Shed events carry Replica == FleetReplica —
	// the request never reached a replica queue.
	c, err := exp.NewFleet(replicas, "affinity", seed, 0.25,
		cluster.WithAdmission(engine.NewSLOAdmission(0.45, 0)))
	if err != nil {
		log.Fatal(err)
	}
	c.Submit(reqs...)
	fmt.Println("\naffinity fleet with SLO admission (p95 TTFT 0.45s) at the fleet door:")
	c.Run(func(ev cluster.Event) {
		if ev.Kind != cluster.EventStep {
			return
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			fmt.Printf("  t=%6.3fs r%d req %2d prefill %4d tokens, queued %.4fs, TTFT %.4fs\n",
				ev.End, ev.Replica, ev.Request, ev.Tokens, ev.Queued, ev.Queued+ev.Latency)
		case engine.PhaseShed:
			fmt.Printf("  t=%6.3fs    req %2d SHED before routing (fleet p95 over budget)\n",
				ev.End, ev.Request)
		}
	})
	fmt.Printf("shed %d of %d; routed per replica: %v\n", c.Shed(), len(reqs), c.Routed())
	for i := 0; i < replicas; i++ {
		fmt.Printf("  replica %d: clock %.3fs, cache hit rate %.1f%%\n",
			i, c.Engine(i).Clock(), 100*c.Engine(i).Caches().HitRate())
	}

	// Fleet churn: replica 1 stalls silently mid-run — the fleet keeps
	// routing to it until its lease expires and the doctor declares it
	// dead, at which point its queued requests re-enter the dispatch
	// queue with their original arrivals (the dead-box wait lands in
	// queue-inclusive TTFT) — while a cold replacement replica joins on
	// a scale plan and pays its re-warm window before serving.
	fmt.Println("\nfleet churn: r1 stalls at t=0.15s, a cold replica joins at t=0.3s:")
	churn, err := exp.NewFleet(replicas, "affinity", seed, 0.25,
		cluster.WithFailure(1, 0.15, cluster.FailStall),
		cluster.WithScalePlan(cluster.ScaleEvent{At: 0.3, Delta: +1}),
		cluster.WithRouteLog(64))
	if err != nil {
		log.Fatal(err)
	}
	churn.Submit(reqs...)
	churn.Run(func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EventReplicaWarming:
			fmt.Printf("  t=%6.3fs r%d joined cold, warming\n", ev.End, ev.Replica)
		case cluster.EventReplicaDead:
			fmt.Printf("  t=%6.3fs r%d declared dead (%d in-flight lost)\n", ev.End, ev.Replica, ev.Tokens)
		case cluster.EventRerouted:
			fmt.Printf("  t=%6.3fs req %2d re-routed off r%d (arrived %.3fs)\n",
				ev.End, ev.Request, ev.Replica, ev.Arrival)
		}
	})
	fmt.Printf("re-routed %d, lost %d; replica states:", churn.Rerouted(), churn.Lost())
	for i := 0; i < churn.Replicas(); i++ {
		fmt.Printf(" r%d=%s", i, churn.State(i))
	}
	fmt.Println()
	redispatched := 0
	for _, rec := range churn.RouteLog() {
		if rec.Rerouted {
			redispatched++
		}
	}
	fmt.Printf("route log (opt-in, last 64): %d records, %d re-dispatches\n",
		len(churn.RouteLog()), redispatched)

	// The full sweep: fleet size × router × arrival rate, calibrated
	// from a single-replica closed-loop run — the registered "fleet"
	// experiment's exact shape, where affinity meets or beats
	// round-robin on goodput at every 4-replica cell.
	fmt.Println()
	p := exp.QuickParams()
	exp.FleetStudy(p, 16, []int{2, 4}, 0.25).Render(os.Stdout)
}
